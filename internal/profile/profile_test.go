package profile

import (
	"errors"
	"strings"
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/event"
)

// TestNilLedgerIsSafe exercises every hook and accessor on a nil ledger:
// the disabled path must be a no-op, never a panic.
func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.StallAccess(0)
	l.StallLock(0)
	l.StallDrain(0)
	l.StallEnd(0)
	l.NoteInvalMiss(0)
	l.StallTick(0, 10)
	l.HandleEvent(&event.Record{Kind: event.BusRequest})
	l.Finish()
	if l.Enabled() || l.Spans() != nil || l.Total(0) != 0 || l.Count(0, CauseArb) != 0 {
		t.Fatal("nil ledger misbehaves")
	}
	if s := l.Summary(); len(s.Cores) != 0 {
		t.Fatalf("nil ledger summary %+v, want zero", s)
	}
}

// TestCauseStrings pins the report keys; Causes() must enumerate them all.
func TestCauseStrings(t *testing.T) {
	want := map[Cause]string{
		CauseArb: "arb-wait", CauseRetry: "retry-backoff", CauseDrain: "drain",
		CauseRefill: "refill", CauseInval: "inval-remiss",
		CauseLock: "lock-spin", CauseOther: "other",
	}
	all := Causes()
	if len(want) != len(all) {
		t.Fatalf("test covers %d causes, package has %d", len(want), len(all))
	}
	for _, c := range all {
		if want[c] != c.String() {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want[c])
		}
	}
	if !strings.Contains(Cause(99).String(), "99") {
		t.Errorf("unknown cause renders %q", Cause(99).String())
	}
}

// drive replays a scripted bus lifecycle for core 0 through HandleEvent.
func drive(l *Ledger, kind event.Kind, busKind bus.Kind, drain bool) {
	l.HandleEvent(&event.Record{Kind: kind, Core: 0, BusKind: uint8(busKind), Drain: drain})
}

// TestAccessCauseFollowsBusPhase walks one fill transaction through its
// phases and checks each stalled tick lands in the matching bucket.
func TestAccessCauseFollowsBusPhase(t *testing.T) {
	l := NewLedger(1)
	l.StallAccess(0)

	l.StallTick(0, 1) // no transaction visible yet: unclassified
	drive(l, event.BusRequest, bus.ReadLine, false)
	l.StallTick(0, 2) // queued, not granted: arbitration wait
	drive(l, event.Retry, bus.ReadLine, false)
	l.StallTick(0, 3) // plain ARTRY: retry backoff
	drive(l, event.Retry, bus.ReadLine, true)
	l.StallTick(0, 4) // drain-qualified ARTRY: drain
	drive(l, event.BusGrant, bus.ReadLine, false)
	l.StallTick(0, 5) // data phase of a read: refill
	drive(l, event.BusComplete, bus.ReadLine, false)
	l.StallEnd(0)

	want := map[Cause]uint64{CauseOther: 1, CauseArb: 1, CauseRetry: 1, CauseDrain: 1, CauseRefill: 1}
	for c, n := range want {
		if got := l.Count(0, c); got != n {
			t.Errorf("%v = %d, want %d", c, got, n)
		}
	}
	if l.Total(0) != 5 {
		t.Fatalf("total %d, want 5", l.Total(0))
	}
}

// TestWriteBackPhasesCountAsDrain checks a queued or granted write-back
// attributes the wait to the drain bucket, not arbitration/refill.
func TestWriteBackPhasesCountAsDrain(t *testing.T) {
	l := NewLedger(1)
	l.StallAccess(0)
	drive(l, event.BusRequest, bus.WriteLine, false) // eviction WB queued
	drive(l, event.BusRequest, bus.ReadLine, false)  // fill queued behind it
	l.StallTick(0, 1)                                // arb with a pending WB: drain
	drive(l, event.BusGrant, bus.WriteLine, false)
	l.StallTick(0, 2) // WB data phase: drain
	drive(l, event.BusComplete, bus.WriteLine, false)
	drive(l, event.BusGrant, bus.ReadLine, false)
	l.StallTick(0, 3) // fill data phase: refill
	drive(l, event.BusComplete, bus.ReadLine, false)
	l.StallEnd(0)

	if got := l.Count(0, CauseDrain); got != 2 {
		t.Errorf("drain = %d, want 2", got)
	}
	if got := l.Count(0, CauseRefill); got != 1 {
		t.Errorf("refill = %d, want 1", got)
	}
}

// TestInvalMissAttribution checks the NoteInvalMiss flag dominates the bus
// phase for the whole stall, is consumed by the stall end, and may arrive
// before the stall class is set.
func TestInvalMissAttribution(t *testing.T) {
	l := NewLedger(1)
	// Controller classifies the miss before the CPU observes Pending.
	l.NoteInvalMiss(0)
	l.StallAccess(0)
	drive(l, event.BusRequest, bus.ReadLine, false)
	l.StallTick(0, 1)
	drive(l, event.BusGrant, bus.ReadLine, false)
	l.StallTick(0, 2)
	drive(l, event.BusComplete, bus.ReadLine, false)
	l.StallEnd(0)
	if got := l.Count(0, CauseInval); got != 2 {
		t.Fatalf("inval-remiss = %d, want 2 (flag must span the whole stall)", got)
	}
	// The next ordinary stall must not inherit the flag.
	l.StallAccess(0)
	drive(l, event.BusRequest, bus.ReadLine, false)
	l.StallTick(0, 10)
	l.StallEnd(0)
	if got := l.Count(0, CauseInval); got != 2 {
		t.Fatalf("inval-remiss leaked into a later stall: %d", got)
	}
}

// TestLockAndDrainClassesDominate checks the CPU-side class overrides the
// bus phase entirely.
func TestLockAndDrainClassesDominate(t *testing.T) {
	l := NewLedger(1)
	l.StallLock(0)
	drive(l, event.BusRequest, bus.RMWWord, false)
	drive(l, event.BusGrant, bus.RMWWord, false)
	l.StallTick(0, 1)
	l.StallEnd(0)
	drive(l, event.BusComplete, bus.RMWWord, false)
	l.StallDrain(0)
	l.StallTick(0, 2)
	l.StallEnd(0)
	if l.Count(0, CauseLock) != 1 || l.Count(0, CauseDrain) != 1 {
		t.Fatalf("lock=%d drain=%d, want 1/1", l.Count(0, CauseLock), l.Count(0, CauseDrain))
	}
}

// TestSpans checks contiguous same-cause runs coalesce, cause changes split,
// and Finish closes the trailing span.
func TestSpans(t *testing.T) {
	l := NewLedger(2)
	l.StallLock(0)
	l.StallTick(0, 10)
	l.StallTick(0, 12) // same cause: extends, clock-divided gaps tolerated
	l.StallEnd(0)
	l.StallDrain(1)
	l.StallTick(1, 11)
	l.Finish()

	spans := l.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2: %+v", len(spans), spans)
	}
	if spans[0] != (Span{Core: 0, Cause: CauseLock, Start: 10, End: 13}) {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1] != (Span{Core: 1, Cause: CauseDrain, Start: 11, End: 12}) {
		t.Errorf("span 1 = %+v", spans[1])
	}
}

// TestSpanBound checks the retention bound drops spans (never counts) and
// reports the loss.
func TestSpanBound(t *testing.T) {
	l := NewLedger(1)
	l.maxSpans = 2
	for i := 0; i < 4; i++ {
		l.StallLock(0)
		l.StallTick(0, uint64(10*i))
		l.StallEnd(0)
	}
	if got := len(l.Spans()); got != 2 {
		t.Fatalf("%d spans retained, want 2", got)
	}
	s := l.Summary()
	if s.DroppedSpans != 2 {
		t.Fatalf("dropped %d, want 2", s.DroppedSpans)
	}
	if l.Total(0) != 4 {
		t.Fatalf("counts must survive span drops: total %d, want 4", l.Total(0))
	}
}

// TestSummaryAndFolded checks the summary arithmetic and the folded-stack
// rendering (core;cause count, display order, zero causes omitted).
func TestSummaryAndFolded(t *testing.T) {
	l := NewLedger(2)
	l.StallLock(0)
	l.StallTick(0, 1)
	l.StallTick(0, 2)
	l.StallEnd(0)
	l.StallDrain(1)
	l.StallTick(1, 3)
	l.Finish()

	s := l.Summary()
	if len(s.Cores) != 2 || s.Cores[0].StallCycles != 2 || s.Cores[1].StallCycles != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.Cores[0].Causes["lock-spin"] != 2 || len(s.Cores[0].Causes) != 1 {
		t.Fatalf("core 0 causes %v", s.Cores[0].Causes)
	}

	var sb strings.Builder
	if err := WriteFolded(&sb, s, func(i int) string { return []string{"ppc", "arm"}[i] }); err != nil {
		t.Fatal(err)
	}
	want := "ppc;lock-spin 2\narm;drain 1\n"
	if sb.String() != want {
		t.Fatalf("folded output %q, want %q", sb.String(), want)
	}

	sb.Reset()
	if err := WriteFolded(&sb, s, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "core0;lock-spin 2\n") {
		t.Fatalf("default labels wrong: %q", sb.String())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteFoldedPropagatesErrors(t *testing.T) {
	l := NewLedger(1)
	l.StallLock(0)
	l.StallTick(0, 1)
	l.Finish()
	if err := WriteFolded(failWriter{}, l.Summary(), nil); err == nil {
		t.Fatal("write error swallowed")
	}
}

// TestOutOfRangeCoresIgnored checks events and hooks for masters beyond the
// core range (the DMA engine) are ignored, not crashed on.
func TestOutOfRangeCoresIgnored(t *testing.T) {
	l := NewLedger(1)
	l.HandleEvent(&event.Record{Kind: event.BusRequest, Core: 5})
	l.HandleEvent(&event.Record{Kind: event.BusRequest, Core: -1})
	l.StallAccess(7)
	l.StallTick(7, 1)
	l.StallEnd(7)
	if l.Total(0) != 0 {
		t.Fatal("out-of-range activity leaked into core 0")
	}
}
