// Package profile implements the per-core, per-cause stall-cycle ledger: it
// attributes every CPU stall cycle to exactly one exclusive cause, so the
// paper's evaluation question — *where do the cycles go* when heterogeneous
// snoopers share a bus — has a machine-readable answer instead of the single
// opaque StallCycles aggregate.
//
// The ledger is driven from two sides:
//
//   - the CPU classifies each stall episode as it begins (memory access,
//     lock/flag spin, or cache drain) and ticks the ledger once per stalled
//     CPU cycle, so the per-cause sums are conserved against
//     cpu.Stats.StallCycles by construction;
//   - the coherence event stream (package event) tracks the bus-side phase
//     of the core's outstanding transactions — arbitration wait, ARTRY
//     back-off, drain wait, data phase — refining memory-access stalls into
//     the paper's cost components.
//
// The conservation invariant (DESIGN.md §7c) is the load-bearing correctness
// rule: for every core, the sum of attributed causes equals StallCycles
// exactly.  A cycle the ledger cannot classify lands in CauseOther rather
// than disappearing, so the invariant holds even if a new stall source is
// added without instrumentation.
//
// Like the metrics and event layers, a nil *Ledger is valid everywhere and
// records nothing: every hook is a single nil check when profiling is off.
package profile

import (
	"fmt"
	"io"

	"hetcc/internal/bus"
	"hetcc/internal/event"
)

// Cause enumerates the exclusive stall causes of the taxonomy (DESIGN.md §7c).
type Cause uint8

const (
	// CauseArb: the core's oldest bus transaction is queued awaiting
	// arbitration (submitted, not yet granted, not under retry).
	CauseArb Cause = iota
	// CauseRetry: the core's transaction was ARTRYed and is in retry
	// back-off or re-arbitration, with no dirty-line drain implicated.
	CauseRetry
	// CauseDrain: dirty-line drain/steal — the core's own write-back,
	// software clean, or ISR drain is in flight, or its transaction is
	// being retried while a remote owner (cache or ISR) drains the line.
	CauseDrain
	// CauseRefill: the granted data phase of a fill or uncached access is
	// in progress (memory burst, single-word, or cache-to-cache latency).
	CauseRefill
	// CauseInval: an invalidation-induced re-miss — the whole stall of a
	// miss on a line that was invalidated by a wrapper read→write
	// conversion since the core last held it (the paper's coherence cost).
	CauseInval
	// CauseLock: lock acquisition/release memory operations and flag spin
	// waits (WaitEq polling).
	CauseLock
	// CauseOther: stalled cycles the ledger could not classify.  Kept as an
	// explicit bucket so the conservation invariant holds by construction.
	CauseOther

	causeCount
)

// String returns the cause's report key.
func (c Cause) String() string {
	switch c {
	case CauseArb:
		return "arb-wait"
	case CauseRetry:
		return "retry-backoff"
	case CauseDrain:
		return "drain"
	case CauseRefill:
		return "refill"
	case CauseInval:
		return "inval-remiss"
	case CauseLock:
		return "lock-spin"
	case CauseOther:
		return "other"
	default:
		return fmt.Sprintf("Cause(%d)", uint8(c))
	}
}

// Causes lists every cause in display order (folded stacks, tests).
func Causes() []Cause {
	out := make([]Cause, 0, causeCount)
	for c := Cause(0); c < causeCount; c++ {
		out = append(out, c)
	}
	return out
}

// stallClass is the CPU-side classification of the current stall episode.
type stallClass uint8

const (
	classNone stallClass = iota
	classAccess
	classLock
	classDrain
)

// busPhase tracks where a core's oldest outstanding bus transaction is in
// its lifecycle, reconstructed from the event stream.
type busPhase uint8

const (
	phaseIdle busPhase = iota
	phaseArb
	phaseRetry
	phaseDrainWait
	phaseData
)

// Span is one contiguous run of stalled CPU cycles attributed to a single
// cause, in engine cycles.  Package chrometrace renders spans as per-core
// timeline lanes.
type Span struct {
	Core  int
	Cause Cause
	// Start is the engine cycle of the first stalled tick; End is one past
	// the engine cycle of the last stalled tick of the span.
	Start uint64
	End   uint64
}

// DefaultMaxSpans bounds the retained stall spans so profiling-enabled runs
// cannot grow memory without bound (mirrors platform.maxTenures).
const DefaultMaxSpans = 1 << 17

type coreState struct {
	class        stallClass
	inval        bool // the open access stall is an invalidation re-miss
	pendingInval bool // the next access stall will be an invalidation re-miss

	queued    int // outstanding bus transactions for this master
	pendingWB int // of which write-backs (drains)
	phase     busPhase
	grantWB   bool // the in-flight data phase is a write-back

	counts [causeCount]uint64

	// Lazy (event-scheduler) accounting: while armed, stalled CPU edges are
	// attributed in bulk at each state-mutation point instead of one call per
	// stalled tick.  lastEdge is the engine cycle of the last attributed
	// edge, div the core's clock divisor.  Never set under the tick
	// scheduler, where StallTick keeps its per-cycle legacy path.
	lazy     bool
	lastEdge uint64
	div      uint64

	spanOpen  bool
	spanCause Cause
	spanStart uint64
	spanEnd   uint64
}

// Ledger is the per-core stall accountant.  It is not safe for concurrent
// use (the simulation kernel is single-threaded, DESIGN.md invariant 7).
type Ledger struct {
	cores        []coreState
	spans        []Span
	maxSpans     int
	droppedSpans uint64

	// clock reads the current engine cycle (event scheduler only; see
	// SetClock).  NoteInvalMiss uses it to flush an armed core's pending
	// stall edges before mutating the state those edges resolve against.
	clock func() uint64
}

// SetClock gives the ledger engine-clock access for lazy (event-scheduler)
// stall attribution.  Leave it unset under the tick scheduler.
func (l *Ledger) SetClock(clock func() uint64) {
	if l != nil {
		l.clock = clock
	}
}

// NewLedger creates a ledger for cores CPU cores (bus masters 0..cores-1;
// events from other masters, e.g. the DMA engine, are ignored).
func NewLedger(cores int) *Ledger {
	return &Ledger{cores: make([]coreState, cores), maxSpans: DefaultMaxSpans}
}

// Enabled reports whether the ledger records anything (false for nil).
func (l *Ledger) Enabled() bool { return l != nil }

func (l *Ledger) core(i int) *coreState {
	if l == nil || i < 0 || i >= len(l.cores) {
		return nil
	}
	return &l.cores[i]
}

func isWriteBack(kind uint8) bool {
	return bus.Kind(kind) == bus.WriteLine || bus.Kind(kind) == bus.WriteLineInv
}

// HandleEvent consumes the coherence event stream, tracking each core's
// bus-side transaction phase.  Subscribe it to the platform's event sink.
func (l *Ledger) HandleEvent(r *event.Record) {
	cs := l.core(r.Core)
	if cs == nil {
		return
	}
	// Lazy mode: the stalled edges up to and including this event's cycle
	// resolved against the phase state as it was *before* this event (the
	// tick-mode CPU ticks before the bus each cycle), so flush them first.
	l.flushThrough(r.Core, cs, r.Cycle)
	switch r.Kind {
	case event.BusRequest:
		cs.queued++
		if isWriteBack(r.BusKind) {
			cs.pendingWB++
		}
		if cs.phase == phaseIdle {
			cs.phase = phaseArb
		}
	case event.BusGrant:
		cs.phase = phaseData
		cs.grantWB = isWriteBack(r.BusKind)
	case event.Retry:
		if r.Drain {
			cs.phase = phaseDrainWait
		} else {
			cs.phase = phaseRetry
		}
	case event.BusComplete:
		if cs.queued > 0 {
			cs.queued--
		}
		if isWriteBack(r.BusKind) && cs.pendingWB > 0 {
			cs.pendingWB--
		}
		if cs.queued > 0 {
			cs.phase = phaseArb
		} else {
			cs.phase = phaseIdle
		}
	}
}

// StallAccess marks the start of a memory-access stall (cache miss, bus
// write, or uncached access) for core.
func (l *Ledger) StallAccess(core int) {
	if cs := l.core(core); cs != nil {
		cs.class = classAccess
		cs.inval = cs.pendingInval
		cs.pendingInval = false
	}
}

// StallLock marks the start of a lock-protocol or flag-spin stall for core.
func (l *Ledger) StallLock(core int) {
	if cs := l.core(core); cs != nil {
		cs.class = classLock
		cs.inval, cs.pendingInval = false, false
	}
}

// StallDrain marks the start of a cache-drain stall for core (software
// clean, explicit cache op, or ISR drain).
func (l *Ledger) StallDrain(core int) {
	if cs := l.core(core); cs != nil {
		cs.class = classDrain
		cs.inval, cs.pendingInval = false, false
	}
}

// StallEnd marks the end of a stall episode: the CPU calls it on the first
// non-stalled tick after a stall.
func (l *Ledger) StallEnd(core int) {
	if cs := l.core(core); cs != nil {
		l.closeSpan(core, cs)
		cs.class = classNone
		cs.inval, cs.pendingInval = false, false
		cs.lazy = false
	}
}

// Arm switches core to lazy (event-scheduler) stall attribution for the
// episode that just began: now is the engine cycle of the instruction that
// stalled (its first stalled edge is now+div).  The CPU arms the ledger at
// every stall site when the event scheduler is in force; under the tick
// scheduler it never calls Arm and StallTick keeps its per-cycle path.
func (l *Ledger) Arm(core int, now, div uint64) {
	if cs := l.core(core); cs != nil {
		cs.lazy = true
		cs.lastEdge = now
		cs.div = div
	}
}

// Disarm ends lazy attribution for core without closing the stall episode
// (StallEnd still runs at the CPU's next tick, exactly as in tick mode).
// The CPU calls it when a completion callback unstalls the core, so bus
// events between the unstall and the core's next tick no longer attribute
// edges the CPU will not count.
func (l *Ledger) Disarm(core int) {
	if cs := l.core(core); cs != nil {
		cs.lazy = false
	}
}

// flushThrough attributes every stalled CPU edge in (lastEdge, through] to
// the cause the core's *current* state resolves to.  Callers flush before
// every mutation of that state, which is what makes bulk attribution
// edge-exact: between two mutations the resolved cause is constant.
func (l *Ledger) flushThrough(core int, cs *coreState, through uint64) {
	if !cs.lazy {
		return
	}
	last := through - through%cs.div
	if last <= cs.lastEdge {
		return
	}
	k := (last - cs.lastEdge) / cs.div
	cause := cs.resolve()
	cs.counts[cause] += k
	if cs.spanOpen && cs.spanCause == cause {
		cs.spanEnd = last + 1
	} else {
		l.closeSpan(core, cs)
		cs.spanOpen = true
		cs.spanCause = cause
		cs.spanStart = cs.lastEdge + cs.div
		cs.spanEnd = last + 1
	}
	cs.lastEdge = last
}

// NoteInvalMiss flags the core's current (or imminent) memory-access stall
// as an invalidation-induced re-miss.  The cache controller calls it when a
// fill targets a line that a wrapper read→write conversion invalidated since
// the core last held it.
func (l *Ledger) NoteInvalMiss(core int) {
	if cs := l.core(core); cs != nil {
		if cs.lazy && l.clock != nil {
			l.flushThrough(core, cs, l.clock())
		}
		if cs.class == classAccess {
			cs.inval = true
		} else {
			cs.pendingInval = true
		}
	}
}

// resolve maps the core's current state to the exclusive cause of this
// stalled cycle.
func (cs *coreState) resolve() Cause {
	switch cs.class {
	case classLock:
		return CauseLock
	case classDrain:
		return CauseDrain
	case classAccess:
		if cs.inval {
			return CauseInval
		}
		switch cs.phase {
		case phaseData:
			if cs.grantWB {
				return CauseDrain // eviction/clean write-back transfer
			}
			return CauseRefill
		case phaseDrainWait:
			return CauseDrain
		case phaseRetry:
			return CauseRetry
		case phaseArb:
			if cs.pendingWB > 0 {
				return CauseDrain // a queued write-back blocks the fill
			}
			return CauseArb
		}
	}
	return CauseOther
}

// StallTick attributes one stalled CPU cycle for core at engine cycle now.
// The CPU calls it at exactly the site that increments Stats.StallCycles, so
// the per-cause sums and the aggregate are conserved against each other.
func (l *Ledger) StallTick(core int, now uint64) {
	cs := l.core(core)
	if cs == nil {
		return
	}
	if cs.lazy {
		l.flushThrough(core, cs, now)
		return
	}
	cause := cs.resolve()
	cs.counts[cause]++
	if cs.spanOpen && cs.spanCause == cause {
		cs.spanEnd = now + 1
		return
	}
	l.closeSpan(core, cs)
	cs.spanOpen = true
	cs.spanCause = cause
	cs.spanStart = now
	cs.spanEnd = now + 1
}

func (l *Ledger) closeSpan(core int, cs *coreState) {
	if !cs.spanOpen {
		return
	}
	cs.spanOpen = false
	if len(l.spans) >= l.maxSpans {
		l.droppedSpans++
		return
	}
	l.spans = append(l.spans, Span{Core: core, Cause: cs.spanCause, Start: cs.spanStart, End: cs.spanEnd})
}

// Finish closes any open spans.  The platform calls it once at the end of
// the run, before Summary and Spans.
func (l *Ledger) Finish() {
	if l == nil {
		return
	}
	for i := range l.cores {
		l.closeSpan(i, &l.cores[i])
	}
}

// Spans returns the recorded stall spans in emission order (nil for a nil
// ledger).  Call Finish first so trailing stalls are included.
func (l *Ledger) Spans() []Span {
	if l == nil {
		return nil
	}
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}

// Count returns core's attributed cycles for cause (0 for nil or out of
// range).
func (l *Ledger) Count(core int, cause Cause) uint64 {
	cs := l.core(core)
	if cs == nil || cause >= causeCount {
		return 0
	}
	return cs.counts[cause]
}

// Total returns core's total attributed stall cycles.
func (l *Ledger) Total(core int) uint64 {
	cs := l.core(core)
	if cs == nil {
		return 0
	}
	var t uint64
	for _, n := range cs.counts {
		t += n
	}
	return t
}

// CoreSummary is one core's slice of the ledger.
type CoreSummary struct {
	Core int `json:"core"`
	// StallCycles is the sum of all attributed causes; the conservation
	// invariant requires it to equal the core's cpu.Stats.StallCycles.
	StallCycles uint64 `json:"stall_cycles"`
	// Causes maps cause name to attributed CPU cycles (non-zero causes
	// only; keys sort deterministically under encoding/json).
	Causes map[string]uint64 `json:"causes"`
}

// Summary is the serialisable end-of-run view of the ledger.
type Summary struct {
	Cores []CoreSummary `json:"cores"`
	// DroppedSpans counts stall spans discarded beyond the retention bound
	// (the per-cause cycle counts are never dropped).
	DroppedSpans uint64 `json:"dropped_spans,omitempty"`
}

// Summary renders the ledger (zero value for nil).
func (l *Ledger) Summary() Summary {
	if l == nil {
		return Summary{}
	}
	s := Summary{DroppedSpans: l.droppedSpans}
	for i := range l.cores {
		cs := &l.cores[i]
		c := CoreSummary{Core: i, Causes: make(map[string]uint64)}
		for cause := Cause(0); cause < causeCount; cause++ {
			if n := cs.counts[cause]; n > 0 {
				c.Causes[cause.String()] = n
				c.StallCycles += n
			}
		}
		s.Cores = append(s.Cores, c)
	}
	return s
}

// WriteFolded writes the summary as folded stacks — one "core;cause count"
// line per non-zero cause — the input format of flamegraph tooling
// (flamegraph.pl, inferno, speedscope).  coreName labels the first frame
// (nil falls back to "core N").
func WriteFolded(w io.Writer, s Summary, coreName func(int) string) error {
	for _, c := range s.Cores {
		label := fmt.Sprintf("core%d", c.Core)
		if coreName != nil {
			label = coreName(c.Core)
		}
		for _, cause := range Causes() {
			n := c.Causes[cause.String()]
			if n == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s;%s %d\n", label, cause, n); err != nil {
				return fmt.Errorf("profile: folded write: %w", err)
			}
		}
	}
	return nil
}
