// Package wrapper realises the paper's per-processor bus wrappers.
//
// In hardware the wrapper sits between a processor's native bus interface
// (60x for the PowerPC755, the PC bus for the Intel486) and the shared ASB,
// translating handshakes and — crucially for coherence — manipulating what
// the processor's snoop port observes: read-to-write conversion and
// shared-signal override.  In the simulator the handshake translation is
// already uniform (package bus), so the wrapper reduces to a cache.Policy
// carrying the integration rules computed by core.Reduce, plus bookkeeping
// counters that let experiments report how often each mechanism fired.
package wrapper

import (
	"fmt"

	"hetcc/internal/cache"
	"hetcc/internal/coherence"
	"hetcc/internal/core"
)

// Wrapper implements cache.Policy from a core.WrapperPolicy.
type Wrapper struct {
	name   string
	policy core.WrapperPolicy

	// Conversions counts read-to-write conversions performed on the snoop
	// path; Overrides counts shared-signal overrides that changed the
	// sampled value.
	Conversions uint64
	Overrides   uint64
}

var _ cache.Policy = (*Wrapper)(nil)

// New builds a wrapper named name (for reports) applying policy.
func New(name string, policy core.WrapperPolicy) *Wrapper {
	return &Wrapper{name: name, policy: policy}
}

// Name returns the wrapper's report name.
func (w *Wrapper) Name() string { return w.name }

// Policy returns the integration policy in force.
func (w *Wrapper) Policy() core.WrapperPolicy { return w.policy }

// ConvertSnoop implements cache.Policy: the read-to-write conversion of the
// paper's Figure 1 (equivalently, asserting the Intel486 INV pin on read
// snoop cycles).
func (w *Wrapper) ConvertSnoop(op coherence.BusOp) coherence.BusOp {
	converted := w.policy.SnoopOp(op)
	if converted != op {
		w.Conversions++
	}
	return converted
}

// OverrideShared implements cache.Policy.
func (w *Wrapper) OverrideShared(shared bool) bool {
	out := w.policy.ApplyShared(shared)
	if out != shared {
		w.Overrides++
	}
	return out
}

// AllowSupply implements cache.Policy.
func (w *Wrapper) AllowSupply() bool { return w.policy.AllowCacheToCache }

// String summarises the wrapper configuration.
func (w *Wrapper) String() string {
	return fmt.Sprintf("wrapper(%s %v)", w.name, w.policy)
}
