// Package wrapper realises the paper's per-processor bus wrappers.
//
// In hardware the wrapper sits between a processor's native bus interface
// (60x for the PowerPC755, the PC bus for the Intel486) and the shared ASB,
// translating handshakes and — crucially for coherence — manipulating what
// the processor's snoop port observes: read-to-write conversion and
// shared-signal override.  In the simulator the handshake translation is
// already uniform (package bus), so the wrapper reduces to a cache.Policy
// carrying the integration rules computed by core.Reduce, plus bookkeeping
// counters that let experiments report how often each mechanism fired.
package wrapper

import (
	"fmt"

	"hetcc/internal/cache"
	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/event"
	"hetcc/internal/metrics"
)

// Wrapper implements cache.Policy from a core.WrapperPolicy.
type Wrapper struct {
	name   string
	policy core.WrapperPolicy

	// Conversions counts read-to-write conversions performed on the snoop
	// path; Overrides counts shared-signal overrides that changed the
	// sampled value.
	Conversions uint64
	Overrides   uint64

	// mConvert holds one counter per snoop-op kind actually converted by
	// the policy, indexed by the observed BusOp; mOverride counts changed
	// shared-signal samples.  All nil-safe (see SetMetrics).
	mConvert  map[coherence.BusOp]*metrics.Counter
	mOverride *metrics.Counter

	// nil-safe coherence event sink (see SetEvents); core is the owning
	// processor's index, stamped on every record.
	events *event.Sink
	core   int
}

var _ cache.Policy = (*Wrapper)(nil)

// New builds a wrapper named name (for reports) applying policy.
func New(name string, policy core.WrapperPolicy) *Wrapper {
	return &Wrapper{name: name, policy: policy}
}

// Name returns the wrapper's report name.
func (w *Wrapper) Name() string { return w.name }

// Policy returns the integration policy in force.
func (w *Wrapper) Policy() core.WrapperPolicy { return w.policy }

// SetMetrics attaches the wrapper to a metrics registry, pre-creating one
// conversion counter per snoop-op kind the policy actually rewrites (e.g.
// "wrapper.PowerPC755.convert.BusRd→BusRdX").  A nil registry leaves the
// instruments nil (no-op).
func (w *Wrapper) SetMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	w.mConvert = make(map[coherence.BusOp]*metrics.Counter)
	for _, op := range []coherence.BusOp{coherence.BusRd, coherence.BusRdX, coherence.BusUpgr, coherence.BusUpd} {
		if converted := w.policy.SnoopOp(op); converted != op {
			w.mConvert[op] = r.Counter(fmt.Sprintf("wrapper.%s.convert.%v→%v", w.name, op, converted))
		}
	}
	w.mOverride = r.Counter(fmt.Sprintf("wrapper.%s.shared.overrides", w.name))
}

// SetEvents attaches the wrapper to a coherence event sink; core is the
// owning processor's index.  A nil sink makes every emission a nil check.
func (w *Wrapper) SetEvents(s *event.Sink, core int) {
	w.events = s
	w.core = core
}

// ConvertSnoop implements cache.Policy: the read-to-write conversion of the
// paper's Figure 1 (equivalently, asserting the Intel486 INV pin on read
// snoop cycles).
func (w *Wrapper) ConvertSnoop(op coherence.BusOp) coherence.BusOp {
	converted := w.policy.SnoopOp(op)
	if converted != op {
		w.Conversions++
		w.mConvert[op].Inc() // nil map lookup yields a nil (no-op) counter
		w.events.WrapperConvert(w.core, op, converted)
	}
	return converted
}

// OverrideShared implements cache.Policy.
func (w *Wrapper) OverrideShared(shared bool) bool {
	out := w.policy.ApplyShared(shared)
	if out != shared {
		w.Overrides++
		w.mOverride.Inc()
		w.events.SharedOverride(w.core, shared, out)
	}
	return out
}

// AllowSupply implements cache.Policy.
func (w *Wrapper) AllowSupply() bool { return w.policy.AllowCacheToCache }

// String summarises the wrapper configuration.
func (w *Wrapper) String() string {
	return fmt.Sprintf("wrapper(%s %v)", w.name, w.policy)
}
