package wrapper

import (
	"strings"
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
)

func TestConversionCountsAndMaps(t *testing.T) {
	w := New("P0", core.WrapperPolicy{ConvertReadToWrite: true})
	if got := w.ConvertSnoop(coherence.BusRd); got != coherence.BusRdX {
		t.Fatalf("BusRd -> %v, want BusRdX", got)
	}
	if got := w.ConvertSnoop(coherence.BusRdX); got != coherence.BusRdX {
		t.Fatalf("BusRdX -> %v", got)
	}
	if got := w.ConvertSnoop(coherence.BusUpgr); got != coherence.BusUpgr {
		t.Fatalf("BusUpgr -> %v", got)
	}
	if w.Conversions != 1 {
		t.Fatalf("conversions %d, want 1 (only the BusRd)", w.Conversions)
	}
}

func TestNoConversionPassesThrough(t *testing.T) {
	w := New("P0", core.WrapperPolicy{})
	if got := w.ConvertSnoop(coherence.BusRd); got != coherence.BusRd {
		t.Fatalf("BusRd -> %v with conversion off", got)
	}
	if w.Conversions != 0 {
		t.Fatal("counted a conversion that did not happen")
	}
}

func TestSharedOverrides(t *testing.T) {
	cases := []struct {
		ov       core.SharedOverride
		in, want bool
	}{
		{core.SharedPassthrough, true, true},
		{core.SharedPassthrough, false, false},
		{core.SharedForceAssert, false, true},
		{core.SharedForceAssert, true, true},
		{core.SharedForceDeassert, true, false},
		{core.SharedForceDeassert, false, false},
	}
	for _, c := range cases {
		w := New("P", core.WrapperPolicy{Shared: c.ov})
		if got := w.OverrideShared(c.in); got != c.want {
			t.Errorf("%v(%v) = %v, want %v", c.ov, c.in, got, c.want)
		}
	}
}

func TestOverrideCounter(t *testing.T) {
	w := New("P", core.WrapperPolicy{Shared: core.SharedForceDeassert})
	w.OverrideShared(true)  // changed
	w.OverrideShared(false) // unchanged
	if w.Overrides != 1 {
		t.Fatalf("overrides %d, want 1", w.Overrides)
	}
}

func TestAllowSupply(t *testing.T) {
	if New("P", core.WrapperPolicy{}).AllowSupply() {
		t.Fatal("default wrapper allows c2c")
	}
	if !New("P", core.WrapperPolicy{AllowCacheToCache: true}).AllowSupply() {
		t.Fatal("c2c wrapper denies supply")
	}
}

func TestStringIncludesName(t *testing.T) {
	w := New("PowerPC755", core.WrapperPolicy{ConvertReadToWrite: true})
	if s := w.String(); !strings.Contains(s, "PowerPC755") {
		t.Fatalf("String() = %q", s)
	}
	if w.Name() != "PowerPC755" {
		t.Fatal("name lost")
	}
}
