package hetcc

import (
	"fmt"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/isa"
	"hetcc/internal/memory"
	"hetcc/internal/platform"
)

// DefaultLineCounts is the x-axis of the paper's Figures 5–7 ("# of
// accessed cache lines per iteration", 1..32).
func DefaultLineCounts() []int { return []int{1, 2, 4, 8, 16, 32} }

// DefaultExecTimes is the paper's exec_time parameter set.
func DefaultExecTimes() []int { return []int{1, 2, 4} }

// DefaultMissPenalties is the Figure 8 sweep of the burst miss penalty in
// bus cycles (13 is the Table 4 baseline; the paper sweeps to 96).
func DefaultMissPenalties() []int { return []int{13, 24, 48, 72, 96} }

// RatioPoint is one x-position of a Figure 5/6/7 chart: the execution time
// of each strategy and the ratios relative to the cache-disabled run, as
// the paper plots them.
type RatioPoint struct {
	Scenario Scenario
	ExecTime int
	Lines    int

	CyclesDisabled uint64
	CyclesSoftware uint64
	CyclesProposed uint64

	// RatioSoftware/RatioProposed are execution-time ratios relative to
	// the cache-disabled baseline (the y-axis of Figures 5–7).
	RatioSoftware float64
	RatioProposed float64
	// SpeedupVsSoftwarePct is the paper's "% speedup compared to the
	// software solution".
	SpeedupVsSoftwarePct float64
}

func ratios(p RatioPoint) RatioPoint {
	d := float64(p.CyclesDisabled)
	if d > 0 {
		p.RatioSoftware = float64(p.CyclesSoftware) / d
		p.RatioProposed = float64(p.CyclesProposed) / d
	}
	if p.CyclesSoftware > 0 {
		p.SpeedupVsSoftwarePct = (float64(p.CyclesSoftware) - float64(p.CyclesProposed)) / float64(p.CyclesSoftware) * 100
	}
	return p
}

// FigureOptions tunes the figure runners; the zero value reproduces the
// paper's configuration.
type FigureOptions struct {
	ExecTimes  []int
	LineCounts []int
	Iterations int
	Seed       uint64
	Timing     memory.Timing
	Processors []platform.ProcessorSpec
	Verify     bool
	// Audit additionally runs the online invariant auditor in every
	// simulation; any invariant violation fails the figure.
	Audit bool
	// Jobs is the batch worker count (<= 0 selects GOMAXPROCS).  Points are
	// aggregated in sweep order, so the figure output is byte-identical
	// whatever the worker count.
	Jobs int
	// Scheduler selects the engine scheduling strategy for every run
	// (platform.SchedulerEvent or platform.SchedulerTick; "" = default).
	// Both produce identical figures — CI diffs the two outputs.
	Scheduler string
}

func (o FigureOptions) defaults() FigureOptions {
	if len(o.ExecTimes) == 0 {
		o.ExecTimes = DefaultExecTimes()
	}
	if len(o.LineCounts) == 0 {
		o.LineCounts = DefaultLineCounts()
	}
	return o
}

// figureSpec builds the batch spec for one (scenario, solution, exec_time,
// lines) coordinate of a Figure 5–7 sweep.
func figureSpec(s Scenario, sol Solution, execTime, lines int, o FigureOptions) BatchSpec {
	return BatchSpec{
		Label: fmt.Sprintf("%v/%v/exec=%d/lines=%d", s, sol, execTime, lines),
		Config: Config{
			Scenario:   s,
			Solution:   sol,
			Processors: o.Processors,
			Timing:     o.Timing,
			Verify:     o.Verify,
			Audit:      o.Audit,
			Scheduler:  o.Scheduler,
			Params: Params{
				Lines:      lines,
				ExecTime:   execTime,
				Iterations: o.Iterations,
				Seed:       o.Seed,
			},
		},
	}
}

// figureRunError turns a completed figure run into an error if it failed,
// observed a stale read, or (when auditing) violated a coherence invariant.
func figureRunError(r BatchResult) error {
	if r.Err != nil {
		return r.Err
	}
	res := r.Result
	if res.Err != nil {
		return fmt.Errorf("hetcc: %s: %w", r.Label, res.Err)
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("hetcc: %s: coherence violation: %v", r.Label, res.Violations[0])
	}
	if res.Audit != nil && res.Audit.ViolationCount > 0 {
		return fmt.Errorf("hetcc: %s: %d invariant violation(s), first: %v",
			r.Label, res.Audit.ViolationCount, res.Audit.Violations[0])
	}
	return nil
}

// FigureRatios reproduces one of Figures 5–7: scenario s swept over
// exec_time and line counts.  The sweep's runs execute on a worker pool of
// opts.Jobs workers; points are assembled in sweep order.
func FigureRatios(s Scenario, opts FigureOptions) ([]RatioPoint, error) {
	o := opts.defaults()
	// One run per (exec_time, lines, solution) coordinate, flattened in
	// sweep order so aggregation (and any error reported) is independent of
	// the worker count.
	var specs []BatchSpec
	for _, et := range o.ExecTimes {
		for _, ln := range o.LineCounts {
			for _, sol := range platform.Solutions() {
				specs = append(specs, figureSpec(s, sol, et, ln, o))
			}
		}
	}
	results := RunBatch(specs, BatchOptions{Jobs: o.Jobs})
	for _, r := range results {
		if err := figureRunError(r); err != nil {
			return nil, err
		}
	}
	var out []RatioPoint
	i := 0
	for _, et := range o.ExecTimes {
		for _, ln := range o.LineCounts {
			pt := RatioPoint{Scenario: s, ExecTime: et, Lines: ln}
			for _, sol := range platform.Solutions() {
				cycles := results[i].Result.Cycles
				i++
				switch sol {
				case CacheDisabled:
					pt.CyclesDisabled = cycles
				case Software:
					pt.CyclesSoftware = cycles
				case Proposed:
					pt.CyclesProposed = cycles
				}
			}
			out = append(out, ratios(pt))
		}
	}
	return out, nil
}

// Figure5 reproduces the worst-case-scenario chart.
func Figure5(opts FigureOptions) ([]RatioPoint, error) { return FigureRatios(WCS, opts) }

// Figure6 reproduces the best-case-scenario chart.
func Figure6(opts FigureOptions) ([]RatioPoint, error) { return FigureRatios(BCS, opts) }

// Figure7 reproduces the typical-case-scenario chart.
func Figure7(opts FigureOptions) ([]RatioPoint, error) { return FigureRatios(TCS, opts) }

// PenaltyPoint is one coordinate of Figure 8: the proposed solution's
// execution time relative to the software solution as the miss penalty
// grows.
type PenaltyPoint struct {
	Scenario    Scenario
	Lines       int
	MissPenalty int // burst (8-word) latency in bus cycles

	CyclesSoftware uint64
	CyclesProposed uint64
	// RatioVsSoftware is the y-axis of Figure 8 (proposed / software).
	RatioVsSoftware float64
	SpeedupPct      float64
}

// Figure8 reproduces the miss-penalty sweep: scenarios × lines ∈ {1, 32} ×
// penalties, batched like FigureRatios.
func Figure8(penalties []int, opts FigureOptions) ([]PenaltyPoint, error) {
	if len(penalties) == 0 {
		penalties = DefaultMissPenalties()
	}
	o := opts.defaults()
	scenarios := []Scenario{WCS, TCS, BCS}
	solutions := []Solution{Software, Proposed}
	lineCounts := []int{1, 32}
	var specs []BatchSpec
	for _, s := range scenarios {
		for _, lines := range lineCounts {
			for _, pen := range penalties {
				for _, sol := range solutions {
					specs = append(specs, BatchSpec{
						Label: fmt.Sprintf("figure8 %v/%v lines=%d pen=%d", s, sol, lines, pen),
						Config: Config{
							Scenario:   s,
							Solution:   sol,
							Processors: o.Processors,
							Timing:     memory.ScaledTiming(pen),
							Verify:     o.Verify,
							Audit:      o.Audit,
							Scheduler:  o.Scheduler,
							Params: Params{
								Lines:      lines,
								ExecTime:   1,
								Iterations: o.Iterations,
								Seed:       o.Seed,
							},
						},
					})
				}
			}
		}
	}
	results := RunBatch(specs, BatchOptions{Jobs: o.Jobs})
	for _, r := range results {
		if err := figureRunError(r); err != nil {
			return nil, err
		}
	}
	var out []PenaltyPoint
	i := 0
	for _, s := range scenarios {
		for _, lines := range lineCounts {
			for _, pen := range penalties {
				pt := PenaltyPoint{Scenario: s, Lines: lines, MissPenalty: pen}
				pt.CyclesSoftware = results[i].Result.Cycles
				pt.CyclesProposed = results[i+1].Result.Cycles
				i += 2
				if pt.CyclesSoftware > 0 {
					pt.RatioVsSoftware = float64(pt.CyclesProposed) / float64(pt.CyclesSoftware)
					pt.SpeedupPct = (float64(pt.CyclesSoftware) - float64(pt.CyclesProposed)) / float64(pt.CyclesSoftware) * 100
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// Table1Row is one platform-class row of the paper's Table 1.
type Table1Row struct {
	Class       core.PlatformClass
	Description string
	Example     string
}

// Table1 reproduces the platform classification.
func Table1() []Table1Row {
	classify := func(ks ...coherence.Kind) core.PlatformClass {
		c, err := core.Classify(ks)
		if err != nil {
			panic(err)
		}
		return c
	}
	return []Table1Row{
		{
			Class:       classify(coherence.None, coherence.None),
			Description: "no processor has cache coherence hardware",
			Example:     "ARM920T + ARM920T",
		},
		{
			Class:       classify(coherence.MEI, coherence.None),
			Description: "one processor has coherence hardware, the other does not",
			Example:     "PowerPC755 (MEI) + ARM920T",
		},
		{
			Class:       classify(coherence.MEI, coherence.MESI),
			Description: "every processor has cache coherence hardware",
			Example:     "PowerPC755 (MEI) + Intel486 (MESI)",
		},
	}
}

// SequenceStep is one row of a Table 2/3 replay: the operation and the
// per-processor line states sampled after it completed.
type SequenceStep struct {
	Label  string
	Op     string
	States []coherence.State
}

// SequenceResult is the outcome of replaying a Table 2/3 operation
// sequence on the full simulator.
type SequenceResult struct {
	Protocols []coherence.Kind
	Wrappers  bool
	Steps     []SequenceStep
	// StaleRead reports whether the final read observed stale data — the
	// defect the tables illustrate.
	StaleRead  bool
	Violations []platform.Violation
}

// replaySequence runs the canonical a/b/c/d sequence (P0 reads, P1 reads,
// P1 writes, P0 reads — the same line) on a two-processor platform with the
// given native protocols, with or without the paper's wrappers.
func replaySequence(p0, p1 coherence.Kind, wrappers bool) (SequenceResult, error) {
	specs := []platform.ProcessorSpec{
		platform.Generic("P0-"+p0.String(), p0, 1),
		platform.Generic("P1-"+p1.String(), p1, 1),
	}
	plat, err := platform.Build(platform.Config{
		Processors:      specs,
		Solution:        platform.Proposed,
		Lock:            platform.LockChoice{Kind: platform.LockUncachedTAS},
		DisableWrappers: !wrappers,
		Verify:          true,
	})
	if err != nil {
		return SequenceResult{}, err
	}
	addr := platform.SharedBase
	const phase = 2000
	progsrc := [][]struct {
		at    int
		write bool
		val   uint32
	}{
		{{at: 0}, {at: 3 * phase}},                               // P0: a (read), d (read)
		{{at: 1 * phase}, {at: 2 * phase, write: true, val: 42}}, // P1: b (read), c (write)
	}
	progs := buildTimedPrograms(progsrc, addr)
	if err := plat.LoadPrograms(progs); err != nil {
		return SequenceResult{}, err
	}

	res := SequenceResult{Protocols: []coherence.Kind{p0, p1}, Wrappers: wrappers}
	labels := []string{"a: P0 reads", "b: P1 reads", "c: P1 writes", "d: P0 reads"}
	for i := 0; i < 4; i++ {
		target := uint64((i + 1) * phase)
		for plat.Engine.Now() < target && !plat.Engine.Stopped() {
			plat.Engine.Step()
		}
		res.Steps = append(res.Steps, SequenceStep{
			Label: labels[i],
			Op:    labels[i][3:],
			States: []coherence.State{
				plat.Controllers[0].Cache().StateOf(addr),
				plat.Controllers[1].Cache().StateOf(addr),
			},
		})
	}
	final := plat.Run(1_000_000)
	res.Violations = final.Violations
	res.StaleRead = len(final.Violations) > 0
	return res, nil
}

// buildTimedPrograms turns per-task timed access lists into delay-padded
// programs (1 CPU cycle per op is negligible against the phase spacing).
func buildTimedPrograms(src [][]struct {
	at    int
	write bool
	val   uint32
}, addr uint32) []isa.Program {
	progs := make([]isa.Program, len(src))
	for t, accesses := range src {
		b := isa.NewBuilder()
		elapsed := 0
		for _, a := range accesses {
			if a.at > elapsed {
				b.Delay(a.at - elapsed)
				elapsed = a.at
			}
			if a.write {
				b.Write(addr, a.val)
			} else {
				b.Read(addr)
			}
			elapsed++
		}
		progs[t] = b.Halt()
	}
	return progs
}

// Table2 replays the paper's Table 2 (MEI + MESI): without wrappers the
// final read is stale; with the paper's integration it is coherent.
// The paper's table lists P1 as the MESI processor and P2 as MEI; replay
// keeps that order (P0 = MESI, P1 = MEI).
func Table2() (broken, fixed SequenceResult, err error) {
	broken, err = replaySequence(coherence.MESI, coherence.MEI, false)
	if err != nil {
		return
	}
	fixed, err = replaySequence(coherence.MESI, coherence.MEI, true)
	return
}

// Table3 replays the paper's Table 3 (MSI + MESI): P0 = MSI, P1 = MESI.
func Table3() (broken, fixed SequenceResult, err error) {
	broken, err = replaySequence(coherence.MSI, coherence.MESI, false)
	if err != nil {
		return
	}
	fixed, err = replaySequence(coherence.MSI, coherence.MESI, true)
	return
}

// Table4 summarises the simulation environment defaults, mirroring the
// paper's Table 4.
type Table4Info struct {
	PowerPCClockMHz  int
	ARMClockMHz      int
	BusClockMHz      int
	SingleWordCycles int
	BurstCycles      int
	LineBytes        int
}

// Table4 returns the defaults in force.
func Table4() Table4Info {
	t := memory.DefaultTiming()
	return Table4Info{
		PowerPCClockMHz:  100,
		ARMClockMHz:      50,
		BusClockMHz:      50,
		SingleWordCycles: t.SingleWord,
		BurstCycles:      t.BurstLatency(8),
		LineBytes:        32,
	}
}
