package hetcc_test

import (
	"fmt"

	"hetcc"
	"hetcc/internal/platform"
)

// ExampleRun simulates the paper's best-case scenario on the default
// PowerPC755+ARM920T platform under all three strategies.  The simulator
// is deterministic, so the cycle counts are reproducible.
func ExampleRun() {
	for _, sol := range []hetcc.Solution{hetcc.CacheDisabled, hetcc.Software, hetcc.Proposed} {
		res, err := hetcc.Run(hetcc.Config{
			Scenario: hetcc.BCS,
			Solution: sol,
			Verify:   true,
			Params:   hetcc.Params{Lines: 8, ExecTime: 1, Iterations: 4},
		})
		if err != nil || res.Err != nil {
			fmt.Println("error:", err, res.Err)
			return
		}
		fmt.Printf("%-14v %6d cycles, coherent=%v\n", sol, res.Cycles, res.Coherent())
	}
	// Output:
	// cache-disabled  11497 cycles, coherent=true
	// software         6953 cycles, coherent=true
	// proposed         4553 cycles, coherent=true
}

// ExampleTable2 replays the paper's Table 2 staleness sequence: without the
// wrappers the MESI processor reads a stale Shared line; with them the
// effective protocol is MEI and the read is coherent.
func ExampleTable2() {
	broken, fixed, err := hetcc.Table2()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("without wrappers: stale read = %v\n", broken.StaleRead)
	fmt.Printf("with wrappers:    stale read = %v\n", fixed.StaleRead)
	// Output:
	// without wrappers: stale read = true
	// with wrappers:    stale read = false
}

// ExampleBuild shows platform introspection: the integration plan computed
// for the PF3 case study.
func ExampleBuild() {
	p, err := hetcc.Build(hetcc.Config{
		Scenario:   hetcc.WCS,
		Solution:   hetcc.Proposed,
		Processors: platform.PPCI486(),
		Params:     hetcc.Params{Lines: 1, Iterations: 1},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("class:", p.Integration.Class)
	fmt.Println("effective:", p.Integration.Effective)
	fmt.Println("i486 wrapper:", p.Integration.Policies[1])
	// Output:
	// class: PF3
	// effective: MEI
	// i486 wrapper: {rd→wr:true shared:force-deassert c2c:false}
}
