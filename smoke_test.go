package hetcc

import (
	"testing"

	"hetcc/internal/platform"
)

// TestSmokeAllScenariosAllSolutions runs every scenario × solution
// combination on the paper's PF2 platform with the golden-model checker on:
// every run must terminate coherently.
func TestSmokeAllScenariosAllSolutions(t *testing.T) {
	for _, s := range []Scenario{WCS, TCS, BCS} {
		for _, sol := range platform.Solutions() {
			res, err := Run(Config{
				Scenario: s,
				Solution: sol,
				Verify:   true,
				Params:   Params{Lines: 4, ExecTime: 2, Iterations: 3},
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", s, sol, err)
			}
			if res.Err != nil {
				t.Fatalf("%v/%v: run error: %v (reason %q, cycles %d)", s, sol, res.Err, res.StopReason, res.Cycles)
			}
			if !res.Coherent() {
				t.Fatalf("%v/%v: stale reads: %v", s, sol, res.Violations)
			}
			if res.Cycles == 0 {
				t.Fatalf("%v/%v: zero cycles", s, sol)
			}
			t.Logf("%v/%v: %d cycles", s, sol, res.Cycles)
		}
	}
}
