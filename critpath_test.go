package hetcc_test

import (
	"testing"

	"hetcc"
)

// TestCriticalPathProperties checks the critical-path acceptance invariants
// over the full 27-combination matrix (platform × scenario × solution, spans
// and profiling enabled):
//
//  1. every run carries a critical path whose cycle attributions sum to
//     exactly the run's total cycles (conservation — no cycle unexplained,
//     none double-counted);
//  2. the profile-ledger cross-check passes, i.e. every critical-path cause
//     total is bounded by the corresponding per-core stall-cause ledger
//     entry (scaled by the anchor core's clock divider);
//  3. enabling span collection is observation-only: cycle counts are
//     identical to the same runs with spans disabled.
//
// All three hold under both the event and the tick scheduler.
func TestCriticalPathProperties(t *testing.T) {
	for _, scheduler := range schedulerModes {
		scheduler := scheduler
		t.Run(scheduler, func(t *testing.T) {
			testCriticalPathProperties(t, scheduler)
		})
	}
}

func testCriticalPathProperties(t *testing.T, scheduler string) {
	specs := determinismBatch(t, scheduler)
	withSpans := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: 8, Reports: true})
	if err := hetcc.BatchFirstError(withSpans); err != nil {
		t.Fatalf("spans-enabled batch failed: %v", err)
	}

	bare := make([]hetcc.BatchSpec, len(specs))
	for i, s := range specs {
		bare[i] = s
		bare[i].Config.Spans = false
	}
	withoutSpans := hetcc.RunBatch(bare, hetcc.BatchOptions{Jobs: 8})
	if err := hetcc.BatchFirstError(withoutSpans); err != nil {
		t.Fatalf("spans-disabled batch failed: %v", err)
	}

	for i, r := range withSpans {
		cp := r.Result.CriticalPath
		if cp == nil {
			t.Errorf("%s: no critical path on a spans-enabled run", r.Label)
			continue
		}
		if cp.CrossCheckError != "" {
			t.Errorf("%s: profile-ledger cross-check failed: %s", r.Label, cp.CrossCheckError)
		}
		if got, want := cp.CyclesAttributed(), r.Result.Cycles; got != want {
			t.Errorf("%s: critical path attributes %d cycles, run took %d", r.Label, got, want)
		}
		if cp.TotalCycles != r.Result.Cycles {
			t.Errorf("%s: critical path reports %d total cycles, run took %d",
				r.Label, cp.TotalCycles, r.Result.Cycles)
		}
		for _, a := range cp.Attribution {
			if a.Component == "" || a.Cause == "" {
				t.Errorf("%s: attribution with empty component/cause: %+v", r.Label, a)
			}
		}
		if got, want := r.Result.Cycles, withoutSpans[i].Result.Cycles; got != want {
			t.Errorf("%s: spans changed the simulation: %d cycles with, %d without",
				r.Label, got, want)
		}
	}
}
