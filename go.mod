module hetcc

go 1.22
