package hetcc_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"hetcc"
	"hetcc/internal/coherence"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

// FuzzSchedulerEquivalence fuzzes the dual-scheduler contract over the whole
// configuration surface: any (platform pair, scenario, solution, seed, lock
// mechanism) combination that builds must produce byte-identical JSON reports
// and identical digests under the event and tick schedulers.  The committed
// seed corpus covers each platform, solution and lock kind at least once, so
// plain `go test` replays the corpus as regression cases; `go test -fuzz
// FuzzSchedulerEquivalence` explores further.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add(0, 0, 0, uint64(1), 0)
	f.Add(1, 1, 2, uint64(42), 2)
	f.Add(2, 2, 1, uint64(7), 1)
	f.Add(1, 0, 2, uint64(3), 3)
	f.Add(0, 2, 2, uint64(9), 4)
	// Heterogeneous edge cases beyond the case-study platforms: an
	// update×invalidate mix (rejected by the reduction — both schedulers
	// must agree on the rejection) and a coherence-less master beside a
	// shared-state protocol (the PF2 implicit-MEI reduction).
	f.Add(3, 0, 2, uint64(11), 0)
	f.Add(3, 1, 1, uint64(13), 1)
	f.Add(4, 0, 2, uint64(17), 0)
	f.Add(4, 2, 0, uint64(19), 2)
	f.Fuzz(func(t *testing.T, pf, scenario, solution int, seed uint64, lockKind int) {
		presets := [][]platform.ProcessorSpec{
			platform.ARMPair(), platform.PPCARm(), platform.PPCI486(),
			{
				platform.Generic("P0-Dragon", coherence.Dragon, 1),
				platform.Generic("P1-MOESI", coherence.MOESI, 1),
			},
			{
				platform.Generic("P0-none", coherence.None, 1),
				platform.Generic("P1-MESI", coherence.MESI, 1),
			},
		}
		scenarios := workload.Scenarios()
		solutions := platform.Solutions()
		locks := []platform.LockKind{
			platform.LockUncachedTAS, platform.LockHardwareRegister,
			platform.LockBakery, platform.LockCachedTAS, platform.LockPeterson,
		}
		if pf < 0 || pf >= len(presets) ||
			scenario < 0 || scenario >= len(scenarios) ||
			solution < 0 || solution >= len(solutions) ||
			lockKind < 0 || lockKind >= len(locks) {
			t.Skip("selector out of range")
		}
		run := func(scheduler string) hetcc.BatchResult {
			spec := hetcc.BatchSpec{
				Label: "fuzz",
				Config: hetcc.Config{
					Scenario:   scenarios[scenario],
					Solution:   solutions[solution],
					Processors: presets[pf],
					Params:     hetcc.Params{Lines: 4, ExecTime: 1, Iterations: 2, Seed: seed},
					Lock: &platform.LockChoice{
						Kind:      locks[lockKind],
						Alternate: scenarios[scenario].Alternate(),
						SpinDelay: 4,
					},
					Verify:    true,
					Audit:     true,
					Profile:   true,
					Spans:     true,
					Scheduler: scheduler,
					MaxCycles: 5_000_000,
				},
			}
			return hetcc.RunBatch([]hetcc.BatchSpec{spec}, hetcc.BatchOptions{Jobs: 1, Reports: true})[0]
		}
		event := run(platform.SchedulerEvent)
		tick := run(platform.SchedulerTick)
		if (event.Err == nil) != (tick.Err == nil) {
			t.Fatalf("schedulers disagree on run viability: event err %v, tick err %v", event.Err, tick.Err)
		}
		if event.Err != nil {
			t.Skip("combination does not build:", event.Err)
		}
		rawEvent, err := json.Marshal(event.Report)
		if err != nil {
			t.Fatalf("marshal event report: %v", err)
		}
		rawTick, err := json.Marshal(tick.Report)
		if err != nil {
			t.Fatalf("marshal tick report: %v", err)
		}
		if !bytes.Equal(rawEvent, rawTick) {
			t.Errorf("event and tick reports differ:\n%s\n---\n%s", rawEvent, rawTick)
		}
		if event.Digest == "" || event.Digest != tick.Digest {
			t.Errorf("digest mismatch: event %q, tick %q", event.Digest, tick.Digest)
		}
		if event.Result.Cycles != tick.Result.Cycles {
			t.Errorf("cycle counts differ: event %d, tick %d", event.Result.Cycles, tick.Result.Cycles)
		}
	})
}
