package hetcc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index).  Each figure benchmark
// simulates the paper's key configuration for that chart and reports the
// paper's own metrics (execution-time ratio, % speedup) via ReportMetric,
// so `go test -bench=. -benchmem` reprints the evaluation headline numbers.

import (
	"strconv"
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/memory"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

// --- Table 1 ---------------------------------------------------------------

func BenchmarkTable1Classify(b *testing.B) {
	protos := []coherence.Kind{coherence.MEI, coherence.None}
	for i := 0; i < b.N; i++ {
		if _, err := core.Classify(protos); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 2 and 3: directed staleness replays -----------------------------

func BenchmarkTable2MEIMESI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		broken, fixed, err := Table2()
		if err != nil {
			b.Fatal(err)
		}
		if !broken.StaleRead || fixed.StaleRead {
			b.Fatalf("broken=%v fixed=%v", broken.StaleRead, fixed.StaleRead)
		}
	}
}

func BenchmarkTable3MSIMESI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		broken, fixed, err := Table3()
		if err != nil {
			b.Fatal(err)
		}
		if !broken.StaleRead || fixed.StaleRead {
			b.Fatalf("broken=%v fixed=%v", broken.StaleRead, fixed.StaleRead)
		}
	}
}

// --- Table 4: environment defaults ------------------------------------------

func BenchmarkTable4Timing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := memory.DefaultTiming()
		if t.BurstLatency(8) != 13 {
			b.Fatal("table 4 miss penalty drifted")
		}
	}
}

// --- Figures 5-7: scenario charts -------------------------------------------

// figurePoint simulates all three strategies at one chart coordinate and
// reports the paper's metrics.
func figurePoint(b *testing.B, s Scenario, execTime, lines int) {
	b.Helper()
	var dis, sw, prop uint64
	for i := 0; i < b.N; i++ {
		for _, sol := range []Solution{CacheDisabled, Software, Proposed} {
			res, err := Run(Config{
				Scenario: s,
				Solution: sol,
				Params:   Params{Lines: lines, ExecTime: execTime},
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			switch sol {
			case CacheDisabled:
				dis = res.Cycles
			case Software:
				sw = res.Cycles
			case Proposed:
				prop = res.Cycles
			}
		}
	}
	b.ReportMetric(float64(prop)/float64(dis), "ratioProposed")
	b.ReportMetric(float64(sw)/float64(dis), "ratioSoftware")
	b.ReportMetric((float64(sw)-float64(prop))/float64(sw)*100, "speedupVsSW%")
}

func BenchmarkFigure5WCS(b *testing.B) {
	for _, et := range []int{1, 4} {
		for _, lines := range []int{1, 32} {
			b.Run(benchName("exec", et, "lines", lines), func(b *testing.B) {
				figurePoint(b, WCS, et, lines)
			})
		}
	}
}

func BenchmarkFigure6BCS(b *testing.B) {
	for _, et := range []int{1, 4} {
		for _, lines := range []int{1, 32} {
			b.Run(benchName("exec", et, "lines", lines), func(b *testing.B) {
				figurePoint(b, BCS, et, lines)
			})
		}
	}
}

func BenchmarkFigure7TCS(b *testing.B) {
	for _, et := range []int{1, 4} {
		for _, lines := range []int{1, 32} {
			b.Run(benchName("exec", et, "lines", lines), func(b *testing.B) {
				figurePoint(b, TCS, et, lines)
			})
		}
	}
}

// --- Figure 8: miss-penalty sweep -------------------------------------------

func BenchmarkFigure8MissPenalty(b *testing.B) {
	for _, s := range []Scenario{WCS, TCS, BCS} {
		for _, pen := range []int{13, 48, 96} {
			b.Run(benchName(s.String(), 32, "penalty", pen), func(b *testing.B) {
				var sw, prop uint64
				for i := 0; i < b.N; i++ {
					for _, sol := range []Solution{Software, Proposed} {
						res, err := Run(Config{
							Scenario: s,
							Solution: sol,
							Timing:   memory.ScaledTiming(pen),
							Params:   Params{Lines: 32, ExecTime: 1},
						})
						if err != nil {
							b.Fatal(err)
						}
						if res.Err != nil {
							b.Fatal(res.Err)
						}
						if sol == Software {
							sw = res.Cycles
						} else {
							prop = res.Cycles
						}
					}
				}
				b.ReportMetric(float64(prop)/float64(sw), "ratioVsSoftware")
				b.ReportMetric((float64(sw)-float64(prop))/float64(sw)*100, "speedup%")
			})
		}
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

// BenchmarkSimulatorThroughput measures raw engine speed on the paper's
// default WCS configuration (cycles simulated per wall second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Scenario: WCS, Solution: Proposed, Params: Params{Lines: 16, ExecTime: 2}})
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "simCycles/op")
}

// BenchmarkSchedulerThroughput compares the two engine scheduling strategies
// on a stall-dominated run: the paper's PF2 WCS under the Proposed solution
// with the Figure 8 slow-memory lever at 96 extra cycles, where two thirds of
// all core edges are refill stalls — exactly the idle edges the event
// scheduler skips in bulk.  Cycle counts are asserted identical to the tick
// reference on every iteration; only the wall clock may differ.
// BENCH_pr8.json records the ns/op of both arms (event ≈ 3× tick).
func BenchmarkSchedulerThroughput(b *testing.B) {
	cfg := func(scheduler string) Config {
		return Config{
			Scenario:  WCS,
			Solution:  Proposed,
			Timing:    memory.ScaledTiming(96),
			Params:    Params{Lines: 8, ExecTime: 1, Iterations: 8, WordsPerLine: 8},
			Scheduler: scheduler,
		}
	}
	ref := MustRun(cfg(platform.SchedulerTick))
	if ref.Err != nil {
		b.Fatal(ref.Err)
	}
	for _, scheduler := range schedulerModes {
		scheduler := scheduler
		b.Run(scheduler, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg(scheduler))
				if err != nil || res.Err != nil {
					b.Fatal(err, res.Err)
				}
				if res.Cycles != ref.Cycles {
					b.Fatalf("%s run took %d cycles, tick reference took %d", scheduler, res.Cycles, ref.Cycles)
				}
			}
			b.ReportMetric(float64(ref.Cycles), "simCycles/op")
		})
	}
}

// BenchmarkMetricsDisabled is the guard benchmark for the nil-instrument
// path: the reference WCS run with metrics off.  Compare against
// BenchmarkMetricsEnabled — the disabled path must stay within noise (<2%)
// of the pre-instrumentation baseline, since every hot-path record
// collapses to a nil-receiver branch.
func BenchmarkMetricsDisabled(b *testing.B) {
	benchMetricsRun(b, false)
}

// BenchmarkMetricsEnabled measures the same run with the full metrics layer
// recording (histograms, counters, time series, tenure capture).
func BenchmarkMetricsEnabled(b *testing.B) {
	benchMetricsRun(b, true)
}

func benchMetricsRun(b *testing.B, metrics bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Scenario: WCS,
			Solution: Proposed,
			Metrics:  metrics,
			Params:   Params{Lines: 16, ExecTime: 2},
		})
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
		if metrics && res.Metrics == nil {
			b.Fatal("metrics enabled but no snapshot")
		}
		if !metrics && res.Metrics != nil {
			b.Fatal("metrics disabled but snapshot present")
		}
	}
}

// BenchmarkEventsDisabled is the guard benchmark for the nil-sink path: the
// reference WCS run with the coherence event stream off.  Compare against
// BenchmarkAuditEnabled — with no sink, every emit helper collapses to a
// nil-receiver branch, so the disabled path must stay within noise of the
// pre-instrumentation baseline.
func BenchmarkEventsDisabled(b *testing.B) {
	benchAuditRun(b, false)
}

// BenchmarkAuditEnabled measures the same run with the event stream live and
// the online invariant auditor subscribed (SWMR, dirty-owner, data-value and
// reduction checks on every state change).
func BenchmarkAuditEnabled(b *testing.B) {
	benchAuditRun(b, true)
}

func benchAuditRun(b *testing.B, audit bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Scenario: WCS,
			Solution: Proposed,
			Audit:    audit,
			Params:   Params{Lines: 16, ExecTime: 2},
		})
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
		if audit {
			if res.Audit == nil {
				b.Fatal("audit enabled but no summary")
			}
			if res.Audit.ViolationCount != 0 {
				b.Fatalf("audited benchmark run violated invariants: %v", res.Audit.Violations)
			}
		} else if res.Audit != nil {
			b.Fatal("audit disabled but summary present")
		}
	}
}

// BenchmarkModelCheck measures the core verifier on the heaviest mix.
func BenchmarkModelCheck(b *testing.B) {
	protos := []coherence.Kind{coherence.MOESI, coherence.MESI, coherence.MSI}
	integ, err := core.Reduce(protos)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.Verify(protos, integ.Policies, integ.Effective)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) != 0 {
			b.Fatal("violations appeared")
		}
	}
}

// --- Ablations (design-choice benchmarks from DESIGN.md) ---------------------

// BenchmarkAblationCacheToCache quantifies what MOESI's cache-to-cache
// sharing buys a homogeneous system (the capability heterogeneous mixes
// must give up).
func BenchmarkAblationCacheToCache(b *testing.B) {
	specs := []platform.ProcessorSpec{
		platform.Generic("P0", coherence.MOESI, 1),
		platform.Generic("P1", coherence.MOESI, 1),
	}
	run := func(disableWrappers bool) uint64 {
		// With wrappers: homogeneous MOESI keeps c2c.  DisableWrappers
		// uses the unwired policy, which suppresses supply — the ablation.
		res, err := Run(Config{
			Scenario:        WCS,
			Solution:        Proposed,
			Processors:      specs,
			DisableWrappers: disableWrappers,
			Params:          Params{Lines: 16, ExecTime: 2},
		})
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
		return res.Cycles
	}
	var with, without uint64
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(float64(without)/float64(with), "slowdownWithoutC2C")
}

// BenchmarkAblationISRCost sweeps the ARM interrupt response time, the
// parameter behind the paper's "platforms without need for a special
// interrupt service routine would perform even better".
func BenchmarkAblationISRCost(b *testing.B) {
	for _, resp := range []int{0, 4, 16, 64} {
		b.Run(benchName("response", resp, "", -1), func(b *testing.B) {
			specs := platform.PPCARm()
			specs[1].InterruptResponse = resp
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Scenario:   WCS,
					Solution:   Proposed,
					Processors: specs,
					Params:     Params{Lines: 16, ExecTime: 1},
				})
				if err != nil || res.Err != nil {
					b.Fatal(err, res.Err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
	}
}

func benchName(k1 string, v1 int, k2 string, v2 int) string {
	if v2 < 0 {
		return benchPart(k1, v1)
	}
	return benchPart(k1, v1) + "/" + benchPart(k2, v2)
}

func benchPart(k string, v int) string {
	if k == "" {
		return ""
	}
	return k + "=" + strconv.Itoa(v)
}

// BenchmarkAblationUpdateVsInvalidate contrasts the Dragon update-based
// protocol with MESI on the two canonical sharing patterns: fine-grain word
// ping-pong (Dragon's home turf) and bulk line rewrites (where update
// storms lose to invalidate-once).
func BenchmarkAblationUpdateVsInvalidate(b *testing.B) {
	patterns := []struct {
		name   string
		params Params
	}{
		{"pingpong", Params{Lines: 1, ExecTime: 1, Iterations: 10, WordsPerLine: 1}},
		{"bulk", Params{Lines: 8, ExecTime: 2, Iterations: 6, WordsPerLine: 8}},
	}
	for _, pat := range patterns {
		b.Run(pat.name, func(b *testing.B) {
			run := func(k coherence.Kind) uint64 {
				specs := []platform.ProcessorSpec{platform.Generic("A", k, 1), platform.Generic("B", k, 1)}
				res, err := Run(Config{Scenario: WCS, Solution: Proposed, Processors: specs, Params: pat.params})
				if err != nil || res.Err != nil {
					b.Fatal(err, res.Err)
				}
				return res.Cycles
			}
			var mesi, dragon uint64
			for i := 0; i < b.N; i++ {
				mesi = run(coherence.MESI)
				dragon = run(coherence.Dragon)
			}
			b.ReportMetric(float64(dragon)/float64(mesi), "dragonOverMESI")
		})
	}
}

// BenchmarkScalingProcessors extends the paper's claim that the approach
// "can be easily extended to platforms with more than two processors":
// WCS contention with 2, 3 and 4 heterogeneous cores.
func BenchmarkScalingProcessors(b *testing.B) {
	pools := [][]coherence.Kind{
		{coherence.MEI, coherence.MESI},
		{coherence.MEI, coherence.MESI, coherence.MOESI},
		{coherence.MEI, coherence.MESI, coherence.MOESI, coherence.MSI},
	}
	for _, kinds := range pools {
		b.Run(benchName("cores", len(kinds), "", -1), func(b *testing.B) {
			var specs []platform.ProcessorSpec
			for i, k := range kinds {
				specs = append(specs, platform.Generic("P"+strconv.Itoa(i)+"-"+k.String(), k, 1))
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Scenario:   WCS,
					Solution:   Proposed,
					Processors: specs,
					Verify:     true,
					Params:     Params{Lines: 8, ExecTime: 1, Iterations: 4},
				})
				if err != nil || res.Err != nil {
					b.Fatal(err, res.Err)
				}
				if len(res.Violations) > 0 {
					b.Fatalf("stale read with %d cores: %v", len(kinds), res.Violations[0])
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
	}
}

// BenchmarkAblationPipelinedBus measures what AHB-style address/data
// overlap would buy the paper's platform over the plain ASB.
func BenchmarkAblationPipelinedBus(b *testing.B) {
	run := func(pipelined bool) uint64 {
		res, err := Run(Config{
			Scenario:     WCS,
			Solution:     Proposed,
			PipelinedBus: pipelined,
			Params:       Params{Lines: 16, ExecTime: 1},
		})
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
		return res.Cycles
	}
	var plain, piped uint64
	for i := 0; i < b.N; i++ {
		plain = run(false)
		piped = run(true)
	}
	b.ReportMetric(float64(piped)/float64(plain), "pipelinedOverPlain")
}

// BenchmarkSharingPatterns crosses the canonical sharing patterns with the
// homogeneous protocols: migratory data favours invalidation, fine-grain
// ping-pong and false sharing favour updates, producer/consumer sits
// between — the context for the paper's "invalidation-based protocols are
// more robust" default.
func BenchmarkSharingPatterns(b *testing.B) {
	protos := []coherence.Kind{coherence.MESI, coherence.MOESI, coherence.Dragon}
	for _, pat := range workload.Patterns() {
		for _, k := range protos {
			b.Run(pat.String()+"/"+k.String(), func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					specs := []platform.ProcessorSpec{platform.Generic("A", k, 1), platform.Generic("B", k, 1)}
					p, err := platform.Build(platform.Config{
						Processors: specs,
						Solution:   platform.Proposed,
						Lock:       platform.LockChoice{Kind: platform.LockUncachedTAS, Alternate: true, SpinDelay: 4},
						Verify:     true,
					})
					if err != nil {
						b.Fatal(err)
					}
					progs, err := workload.PatternPrograms(pat, workload.PatternParams{Rounds: 6, Lines: 8})
					if err != nil {
						b.Fatal(err)
					}
					if err := p.LoadPrograms(progs); err != nil {
						b.Fatal(err)
					}
					res := p.Run(20_000_000)
					if res.Err != nil || !res.Coherent() {
						b.Fatalf("%v/%v: err=%v violations=%v", pat, k, res.Err, res.Violations)
					}
					cycles = res.Cycles
				}
				b.ReportMetric(float64(cycles), "simCycles")
			})
		}
	}
}
