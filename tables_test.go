package hetcc

import (
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/platform"
)

// TestTable2StaleWithoutWrapper reproduces the paper's Table 2: integrating
// MEI and MESI without the wrappers leaves the MESI processor with a stale
// Shared line that a later read hits.
func TestTable2StaleWithoutWrapper(t *testing.T) {
	broken, fixed, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !broken.StaleRead {
		t.Fatalf("expected stale read without wrappers; steps: %+v", broken.Steps)
	}
	if fixed.StaleRead {
		t.Fatalf("stale read with wrappers installed: %v", fixed.Violations)
	}
	// Paper Table 2 state walk (P0=MESI, P1=MEI): after (a) P0 holds E;
	// after (b) P0 S / P1 E; after (c) P0 S(stale) / P1 M.
	want := [][2]coherence.State{
		{coherence.Exclusive, coherence.Invalid},
		{coherence.Shared, coherence.Exclusive},
		{coherence.Shared, coherence.Modified},
		{coherence.Shared, coherence.Modified},
	}
	for i, step := range broken.Steps {
		got := [2]coherence.State{step.States[0], step.States[1]}
		if got != want[i] {
			t.Errorf("broken step %s: states %v, want %v", step.Label, got, want[i])
		}
	}
	// With wrappers the effective protocol is MEI: S must never appear.
	for _, step := range fixed.Steps {
		for pi, st := range step.States {
			if st == coherence.Shared || st == coherence.Owned {
				t.Errorf("fixed run: P%d entered %v after %s", pi, st, step.Label)
			}
		}
	}
}

// TestTable3StaleWithoutWrapper reproduces the paper's Table 3 (MSI+MESI):
// the MESI processor silently upgrades its E line while the MSI processor
// keeps a stale S copy.
func TestTable3StaleWithoutWrapper(t *testing.T) {
	broken, fixed, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !broken.StaleRead {
		t.Fatalf("expected stale read without wrappers; steps: %+v", broken.Steps)
	}
	if fixed.StaleRead {
		t.Fatalf("stale read with wrappers installed: %v", fixed.Violations)
	}
	want := [][2]coherence.State{
		{coherence.Shared, coherence.Invalid},
		{coherence.Shared, coherence.Exclusive},
		{coherence.Shared, coherence.Modified},
		{coherence.Shared, coherence.Modified},
	}
	for i, step := range broken.Steps {
		got := [2]coherence.State{step.States[0], step.States[1]}
		if got != want[i] {
			t.Errorf("broken step %s: states %v, want %v", step.Label, got, want[i])
		}
	}
	// With wrappers the effective protocol is MSI: E must never appear.
	for _, step := range fixed.Steps {
		for pi, st := range step.States {
			if st == coherence.Exclusive || st == coherence.Owned {
				t.Errorf("fixed run: P%d entered %v after %s", pi, st, step.Label)
			}
		}
	}
}

// TestTable4Defaults pins the simulation environment to the paper's Table 4.
func TestTable4Defaults(t *testing.T) {
	info := Table4()
	if info.PowerPCClockMHz != 100 || info.ARMClockMHz != 50 || info.BusClockMHz != 50 {
		t.Fatalf("clocks %+v", info)
	}
	if info.SingleWordCycles != 6 {
		t.Fatalf("single word %d, want 6", info.SingleWordCycles)
	}
	if info.BurstCycles != 13 {
		t.Fatalf("burst %d, want 13 (the paper's miss penalty)", info.BurstCycles)
	}
	if info.LineBytes != 32 {
		t.Fatalf("line %d bytes, want 32", info.LineBytes)
	}
}

// TestHardwareDeadlock reproduces the paper's Figure 4: on the PF2 platform
// with a *cached* lock variable the system livelocks; with either remedy
// (uncached lock, hardware lock register, or the Bakery software lock) it
// completes coherently.
func TestHardwareDeadlock(t *testing.T) {
	run := func(kind platform.LockKind) Result {
		lk := platform.LockChoice{Kind: kind, Alternate: false, SpinDelay: 4}
		res, err := Run(Config{
			Scenario: WCS,
			Solution: Proposed,
			Lock:     &lk,
			Verify:   true,
			Params:   Params{Lines: 2, ExecTime: 1, Iterations: 4},
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return res
	}

	if res := run(platform.LockCachedTAS); !res.Deadlocked() {
		t.Errorf("cached lock: expected hardware deadlock, got err=%v after %d cycles", res.Err, res.Cycles)
	}
	for _, kind := range []platform.LockKind{platform.LockUncachedTAS, platform.LockHardwareRegister, platform.LockBakery} {
		res := run(kind)
		if res.Err != nil {
			t.Errorf("%v: run error: %v", kind, res.Err)
			continue
		}
		if !res.Coherent() {
			t.Errorf("%v: stale reads: %v", kind, res.Violations)
		}
	}
}
