package hetcc

// Property tests for the online invariant auditor: the state sets each cache
// actually reaches on live runs must match the paper's protocol-reduction
// table (Section 2), per wrapper policy — the dynamic counterpart of the
// exhaustive model check in internal/core.

import (
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

// runAudited simulates a small WCS workload on the given processors under
// the proposed solution with auditing on and returns the result.
func runAudited(t *testing.T, procs []platform.ProcessorSpec, scenario Scenario) Result {
	t.Helper()
	res, err := Run(Config{
		Scenario:   scenario,
		Solution:   Proposed,
		Processors: procs,
		Params:     Params{Lines: 8, ExecTime: 1, Iterations: 6, WordsPerLine: 8},
		Verify:     true,
		Audit:      true,
		MaxCycles:  5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if res.Audit == nil {
		t.Fatal("audit summary missing")
	}
	return res
}

// genericPair builds a two-processor platform running protocols a and b.
func genericPair(a, b coherence.Kind) []platform.ProcessorSpec {
	return []platform.ProcessorSpec{
		platform.Generic("P0-"+a.String(), a, 1),
		platform.Generic("P1-"+b.String(), b, 1),
	}
}

// observedWithin checks every observed state name is Invalid or in allowed.
func observedWithin(observed []string, allowed []coherence.State) bool {
	for _, name := range observed {
		ok := name == coherence.Invalid.String()
		for _, s := range allowed {
			if name == s.String() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func observes(observed []string, s coherence.State) bool {
	for _, name := range observed {
		if name == s.String() {
			return true
		}
	}
	return false
}

// TestReductionTableObserved sweeps the heterogeneous protocol pairs of the
// paper's reduction table and checks, for each, that the live runs (a) reduce
// to the expected effective protocol, (b) never leave the per-core allowed
// state sets, (c) actually exercise the protocol (Modified observed — the
// check is not vacuous), and (d) report zero invariant violations.
func TestReductionTableObserved(t *testing.T) {
	cases := []struct {
		a, b      coherence.Kind
		effective coherence.Kind
	}{
		{coherence.MEI, coherence.MSI, coherence.MEI},
		{coherence.MEI, coherence.MESI, coherence.MEI},
		{coherence.MEI, coherence.MOESI, coherence.MEI},
		{coherence.MSI, coherence.MESI, coherence.MSI},
		{coherence.MSI, coherence.MOESI, coherence.MSI},
		{coherence.MESI, coherence.MOESI, coherence.MESI},
	}
	for _, tc := range cases {
		t.Run(tc.a.String()+"+"+tc.b.String(), func(t *testing.T) {
			procs := genericPair(tc.a, tc.b)
			integ, err := core.Reduce([]coherence.Kind{tc.a, tc.b})
			if err != nil {
				t.Fatal(err)
			}
			if integ.Effective != tc.effective {
				t.Fatalf("reduced to %v, want %v", integ.Effective, tc.effective)
			}
			res := runAudited(t, procs, WCS)
			a := res.Audit
			if a.ViolationCount != 0 {
				t.Fatalf("%d invariant violations, first: %v", a.ViolationCount, a.Violations[0])
			}
			kinds := []coherence.Kind{tc.a, tc.b}
			sawModified := false
			for i, observed := range a.Reachable {
				allowed := core.AllowedStates(kinds[i], integ.Effective)
				if !observedWithin(observed, allowed) {
					t.Errorf("P%d (%v) observed %v outside allowed %v", i, kinds[i], observed, allowed)
				}
				if observes(observed, coherence.Modified) {
					sawModified = true
				}
				if tc.effective == coherence.MEI && kinds[i] != coherence.MSI &&
					(observes(observed, coherence.Shared) || observes(observed, coherence.Owned)) {
					t.Errorf("P%d (%v) reached S or O under MEI reduction: %v", i, kinds[i], observed)
				}
				if observes(observed, coherence.Owned) && tc.effective != coherence.MOESI {
					t.Errorf("P%d (%v) reached O under %v reduction: %v", i, kinds[i], tc.effective, observed)
				}
			}
			if !sawModified {
				t.Error("no core reached Modified: the workload did not exercise the protocol")
			}
		})
	}
}

// TestReductionHomogeneousControls makes the restriction checks non-vacuous:
// homogeneous platforms run their native protocol unreduced, so MESI sharing
// must actually produce S, and MOESI interventions must produce O.
func TestReductionHomogeneousControls(t *testing.T) {
	mesi := runAudited(t, genericPair(coherence.MESI, coherence.MESI), TCS)
	sawShared := false
	for _, observed := range mesi.Audit.Reachable {
		if observes(observed, coherence.Shared) {
			sawShared = true
		}
	}
	if !sawShared {
		t.Errorf("homogeneous MESI never reached S: %v", mesi.Audit.Reachable)
	}

	moesi := runAudited(t, genericPair(coherence.MOESI, coherence.MOESI), TCS)
	sawOwned := false
	for _, observed := range moesi.Audit.Reachable {
		if observes(observed, coherence.Owned) {
			sawOwned = true
		}
	}
	if !sawOwned {
		t.Errorf("homogeneous MOESI never reached O: %v", moesi.Audit.Reachable)
	}
	if mesi.Audit.ViolationCount != 0 || moesi.Audit.ViolationCount != 0 {
		t.Fatalf("homogeneous runs violated invariants: %d / %d",
			mesi.Audit.ViolationCount, moesi.Audit.ViolationCount)
	}
}

// TestAuditorCatchesUnwiredPlatform is the positive control: removing the
// wrappers from the PPC+i486 platform (the Tables 2/3 defect) must surface as
// audited violations — the auditor is proven able to fail.
func TestAuditorCatchesUnwiredPlatform(t *testing.T) {
	res, err := Run(Config{
		Scenario:        WCS,
		Solution:        Proposed,
		Processors:      platform.PPCI486(),
		Params:          Params{Lines: 8, ExecTime: 1, Iterations: 6, WordsPerLine: 8},
		Verify:          true,
		Audit:           true,
		DisableWrappers: true,
		MaxCycles:       5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if res.Coherent() {
		t.Fatal("unwired platform produced no stale reads (defect demo broke)")
	}
	if res.Audit == nil || res.Audit.ViolationCount == 0 {
		t.Fatal("auditor missed the unwired platform's incoherence")
	}
}

// TestAuditAcceptance runs every solution on every platform preset and
// scenario with auditing on: all combinations must complete with zero
// invariant violations (the PR's acceptance sweep).
func TestAuditAcceptance(t *testing.T) {
	presets := []struct {
		name  string
		procs []platform.ProcessorSpec
	}{
		{"pf1", platform.ARMPair()},
		{"pf2", platform.PPCARm()},
		{"pf3", platform.PPCI486()},
	}
	for _, pf := range presets {
		for _, scenario := range workload.Scenarios() {
			for _, sol := range platform.Solutions() {
				res, err := Run(Config{
					Scenario:   scenario,
					Solution:   sol,
					Processors: pf.procs,
					Params:     Params{Lines: 8, ExecTime: 1, Iterations: 4, WordsPerLine: 8},
					Verify:     true,
					Audit:      true,
					MaxCycles:  5_000_000,
				})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", pf.name, scenario, sol, err)
				}
				if res.Err != nil {
					t.Fatalf("%s/%v/%v: run failed: %v", pf.name, scenario, sol, res.Err)
				}
				if res.Audit == nil || res.Audit.ViolationCount != 0 || !res.Coherent() {
					t.Fatalf("%s/%v/%v: audit failed: %+v", pf.name, scenario, sol, res.Audit)
				}
			}
		}
	}
}
