package hetcc

// Conservation property of the stall-cause ledger (ISSUE 4's load-bearing
// correctness rule): for every core, the sum of the attributed stall causes
// must equal cpu.Stats.StallCycles exactly — no cycle double-counted, no
// cycle lost.  Exercised across the full protocol-pair matrix, all three
// coherence solutions, and the lock mechanisms, because the causes originate
// in different subsystems (bus phases, cache drains, ISR drains, lock
// steppers) and an attribution gap in any of them would break the sum.

import (
	"fmt"
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/platform"
	"hetcc/internal/profile"
)

// schedulerModes: the conservation sweeps run under both engine scheduling
// strategies — the lazy stall-ledger flushing the event scheduler relies on
// must attribute exactly the same cycles as per-edge ticking.
var schedulerModes = []string{platform.SchedulerEvent, platform.SchedulerTick}

// checkConservation asserts the per-core cause sums equal StallCycles, both
// in the summary's own arithmetic and against the CPU counters.
func checkConservation(t *testing.T, res Result) {
	t.Helper()
	if res.Profile == nil {
		t.Fatal("run had no profile summary")
	}
	if len(res.Profile.Cores) != len(res.CPU) {
		t.Fatalf("profile covers %d cores, run has %d", len(res.Profile.Cores), len(res.CPU))
	}
	for i, cs := range res.Profile.Cores {
		var sum uint64
		for _, n := range cs.Causes {
			sum += n
		}
		if sum != cs.StallCycles {
			t.Errorf("core %d: summary causes sum %d != summary stall_cycles %d", i, sum, cs.StallCycles)
		}
		if sum != res.CPU[i].StallCycles {
			t.Errorf("core %d: attributed causes sum %d != StallCycles %d (causes %v)",
				i, sum, res.CPU[i].StallCycles, cs.Causes)
		}
	}
}

func specFor(k coherence.Kind, idx int) platform.ProcessorSpec {
	if k == coherence.None {
		s := platform.ARM920T()
		s.Model = fmt.Sprintf("core%d-none", idx)
		return s
	}
	s := platform.Generic(fmt.Sprintf("core%d-%s", idx, k), k, 1)
	return s
}

// TestStallConservationProtocolMatrix runs the WCS workload under the
// Proposed solution for every reducible protocol pair.
func TestStallConservationProtocolMatrix(t *testing.T) {
	kinds := []coherence.Kind{
		coherence.MEI, coherence.MSI, coherence.MESI,
		coherence.MOESI, coherence.Dragon, coherence.None,
	}
	for _, sched := range schedulerModes {
		for _, a := range kinds {
			for _, b := range kinds {
				sched, a, b := sched, a, b
				t.Run(fmt.Sprintf("%s/%v+%v", sched, a, b), func(t *testing.T) {
					if _, err := core.Reduce([]coherence.Kind{a, b}); err != nil {
						t.Skipf("pair not reducible: %v", err)
					}
					res := MustRun(Config{
						Scenario:   WCS,
						Solution:   Proposed,
						Processors: []platform.ProcessorSpec{specFor(a, 0), specFor(b, 1)},
						Params:     Params{Lines: 8, ExecTime: 1, Iterations: 4, WordsPerLine: 8},
						Verify:     true,
						Profile:    true,
						Scheduler:  sched,
						MaxCycles:  5_000_000,
					})
					if res.Err != nil {
						t.Fatalf("run failed: %v (%s)", res.Err, res.StopReason)
					}
					checkConservation(t, res)
				})
			}
		}
	}
}

// TestStallConservationSolutionsAndLocks sweeps the coherence solutions,
// scenarios and lock mechanisms on the paper's PF2 platform — each engages a
// different stall source (software drains, ISR drains, lock word traffic).
func TestStallConservationSolutionsAndLocks(t *testing.T) {
	scenarios := []Scenario{WCS, TCS, BCS}
	solutions := []Solution{CacheDisabled, Software, Proposed}
	locks := []platform.LockKind{platform.LockUncachedTAS, platform.LockBakery, platform.LockHardwareRegister}
	for _, sched := range schedulerModes {
		for _, sc := range scenarios {
			for _, sol := range solutions {
				for _, lk := range locks {
					sched, sc, sol, lk := sched, sc, sol, lk
					t.Run(fmt.Sprintf("%s/%v/%v/%v", sched, sc, sol, lk), func(t *testing.T) {
						res := MustRun(Config{
							Scenario:  sc,
							Solution:  sol,
							Params:    Params{Lines: 6, ExecTime: 1, Iterations: 3, WordsPerLine: 8},
							Lock:      &platform.LockChoice{Kind: lk, Alternate: sc.Alternate(), SpinDelay: 4},
							Verify:    true,
							Profile:   true,
							Scheduler: sched,
						})
						if res.Err != nil {
							t.Fatalf("run failed: %v (%s)", res.Err, res.StopReason)
						}
						checkConservation(t, res)
					})
				}
			}
		}
	}
}

// TestStallProfileAttributesKnownCauses pins qualitative expectations on the
// paper's PF2 platform under the Proposed solution: drains (ISR steals),
// refills and lock spins must all be visible, and nothing may land in the
// unclassified bucket.
func TestStallProfileAttributesKnownCauses(t *testing.T) {
	res := MustRun(Config{
		Scenario: WCS,
		Solution: Proposed,
		Params:   Params{Lines: 8, ExecTime: 1, Iterations: 4, WordsPerLine: 8},
		Verify:   true,
		Profile:  true,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v (%s)", res.Err, res.StopReason)
	}
	checkConservation(t, res)
	total := func(cause profile.Cause) uint64 {
		var n uint64
		for _, cs := range res.Profile.Cores {
			n += cs.Causes[cause.String()]
		}
		return n
	}
	if total(profile.CauseRefill) == 0 {
		t.Error("no refill cycles attributed; every miss pays a memory burst")
	}
	if total(profile.CauseDrain) == 0 {
		t.Error("no drain cycles attributed; WCS under Proposed forces ISR steals")
	}
	if total(profile.CauseLock) == 0 {
		t.Error("no lock-spin cycles attributed; the workload is lock-based")
	}
	if n := total(profile.CauseOther); n != 0 {
		t.Errorf("%d cycles unclassified; every PF2 stall source is instrumented", n)
	}
}

// TestStallProfileInvalRemiss checks the invalidation-re-miss attribution on
// the paper's PF3 platform (PowerPC755 MEI + Intel486 MESI): the reduction
// forces the Intel486's wrapper to convert remote reads to writes, so its
// lines are invalidated and re-missed — the coherence cost the paper's
// Figure 6 measures.
func TestStallProfileInvalRemiss(t *testing.T) {
	res := MustRun(Config{
		Scenario:   WCS,
		Solution:   Proposed,
		Processors: platform.PPCI486(),
		Params:     Params{Lines: 8, ExecTime: 1, Iterations: 4, WordsPerLine: 8},
		Verify:     true,
		Profile:    true,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v (%s)", res.Err, res.StopReason)
	}
	checkConservation(t, res)
	i486 := res.Profile.Cores[1]
	if i486.Causes[profile.CauseInval.String()] == 0 {
		t.Errorf("Intel486 shows no inval-remiss cycles; causes %v", i486.Causes)
	}
}
