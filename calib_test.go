package hetcc

import (
	"os"
	"testing"
)

// TestCalibration prints the full figure series for manual calibration
// against the paper's headline numbers (gated behind HETCC_CALIB).
func TestCalibration(t *testing.T) {
	if os.Getenv("HETCC_CALIB") == "" {
		t.Skip("set HETCC_CALIB=1 to run")
	}
	for _, fig := range []struct {
		name string
		s    Scenario
	}{{"Figure5 WCS", WCS}, {"Figure6 BCS", BCS}, {"Figure7 TCS", TCS}} {
		pts, err := FigureRatios(fig.s, FigureOptions{Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", fig.name, err)
		}
		t.Logf("== %s ==", fig.name)
		for _, p := range pts {
			t.Logf("exec=%d lines=%2d  dis=%8d sw=%8d prop=%8d  ratioSW=%.3f ratioProp=%.3f  speedupVsSW=%+.2f%%",
				p.ExecTime, p.Lines, p.CyclesDisabled, p.CyclesSoftware, p.CyclesProposed,
				p.RatioSoftware, p.RatioProposed, p.SpeedupVsSoftwarePct)
		}
	}
	pts, err := Figure8(nil, FigureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("== Figure8 ==")
	for _, p := range pts {
		t.Logf("%s lines=%2d pen=%3d  sw=%8d prop=%8d ratio=%.3f speedup=%+.2f%%",
			p.Scenario, p.Lines, p.MissPenalty, p.CyclesSoftware, p.CyclesProposed, p.RatioVsSoftware, p.SpeedupPct)
	}
}
